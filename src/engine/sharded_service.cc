#include "engine/sharded_service.h"

#include <algorithm>

#include "util/check.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/timer.h"

namespace hta {

namespace {

/// Front-end observability: per-call latency of the locked serving
/// entry points (lock wait + shard work), and rejected cross-shard
/// completions. Like EngineMetrics, handles live for the process
/// lifetime and every shard shares one series per name.
struct FrontEndMetrics {
  metrics::Histogram register_seconds{"sharded.register_seconds",
                                      metrics::LatencyBucketsSeconds()};
  metrics::Histogram notify_seconds{"sharded.notify_seconds",
                                    metrics::LatencyBucketsSeconds()};
  metrics::Counter cross_shard_rejections{"sharded.cross_shard_rejections"};
};

FrontEndMetrics& Fm() {
  static FrontEndMetrics* m = new FrontEndMetrics();
  return *m;
}

}  // namespace

ShardedAssignmentService::ShardedAssignmentService(
    const std::vector<Task>* catalog, ShardedServiceOptions options)
    : catalog_(catalog), options_(options) {
  const int64_t env_shards = GetEnvIntOr(
      "HTA_SHARDS", static_cast<int64_t>(options_.num_shards));
  size_t num_shards = env_shards < 1 ? 1 : static_cast<size_t>(env_shards);
  // More shards than tasks would leave empty shards whose services own
  // an empty catalog; clamp instead (a 1-task catalog is 1 shard).
  num_shards = std::min(num_shards, std::max<size_t>(1, catalog_->size()));
  options_.num_shards = num_shards;

  shards_.reserve(num_shards);
  for (size_t s = 0; s < num_shards; ++s) {
    shards_.push_back(std::make_unique<Shard>());
  }

  if (num_shards == 1) {
    // Pass-through: the shard reads the caller's catalog and writes the
    // caller's event log directly, with untouched options — this *is*
    // the unsharded service, wrapped in one mutex.
    shards_[0]->service =
        std::make_unique<AssignmentService>(catalog_, options_.service);
    return;
  }

  // Round-robin task partition: global index g -> shard g % S, local
  // index g / S. Task objects carry their stable ids with them, so
  // shard event logs and shard pools speak global task ids natively.
  for (size_t s = 0; s < num_shards; ++s) {
    shards_[s]->catalog.reserve(catalog_->size() / num_shards + 1);
  }
  for (size_t g = 0; g < catalog_->size(); ++g) {
    shards_[g % num_shards]->catalog.push_back((*catalog_)[g]);
  }

  for (size_t s = 0; s < num_shards; ++s) {
    Shard& shard = *shards_[s];
    AssignmentServiceOptions shard_options = options_.service;
    // Decorrelated but deterministic per-shard randomness.
    shard_options.seed = options_.service.seed ^ static_cast<uint64_t>(s);
    // Globally unique ids that encode the shard: s+1, s+1+S, s+1+2S...
    shard_options.worker_id_start = static_cast<uint64_t>(s) + 1;
    shard_options.worker_id_stride = static_cast<uint64_t>(num_shards);
    if (options_.service.event_log != nullptr) {
      shard.log = std::make_unique<EventLog>();
      shard_options.event_log = shard.log.get();
    }
    shard.service =
        std::make_unique<AssignmentService>(&shard.catalog, shard_options);
  }
}

size_t ShardedAssignmentService::ShardForInterests(
    const KeywordVector& interests) const {
  // FNV-1a over the universe size and the packed interest blocks,
  // byte-by-byte in little-endian order: stable across platforms and
  // independent of how the interests were constructed.
  uint64_t h = 14695981039346656037ull;
  const auto mix = [&h](uint64_t v) {
    for (int byte = 0; byte < 8; ++byte) {
      h ^= (v >> (8 * byte)) & 0xffu;
      h *= 1099511628211ull;
    }
  };
  mix(static_cast<uint64_t>(interests.universe_size()));
  for (const uint64_t block : interests.blocks()) mix(block);
  return static_cast<size_t>(h % static_cast<uint64_t>(shards_.size()));
}

uint64_t ShardedAssignmentService::RegisterWorker(
    const KeywordVector& interests) {
  const size_t s = ShardForInterests(interests);
  Shard& shard = *shards_[s];
  WallTimer timer;
  uint64_t id;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    id = shard.service->RegisterWorker(interests);
  }
  Fm().register_seconds.Observe(timer.ElapsedSeconds());
  HTA_DCHECK_EQ(ShardOfWorker(id), s);
  return id;
}

std::vector<size_t> ShardedAssignmentService::Displayed(
    uint64_t worker_id) const {
  const size_t s = ShardOfWorker(worker_id);
  const Shard& shard = *shards_[s];
  std::vector<size_t> displayed;
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    displayed = shard.service->Displayed(worker_id);
  }
  for (size_t& index : displayed) index = GlobalTaskIndex(s, index);
  return displayed;
}

Status ShardedAssignmentService::NotifyCompleted(uint64_t worker_id,
                                                 size_t catalog_index) {
  const size_t s = ShardOfWorker(worker_id);
  if (ShardOfTask(catalog_index) != s) {
    // Without this guard the local-index mapping would silently alias
    // the completion onto an unrelated task inside the worker's shard.
    Fm().cross_shard_rejections.Add();
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " lives in shard " +
        std::to_string(ShardOfTask(catalog_index)) + ", not worker " +
        std::to_string(worker_id) + "'s shard " + std::to_string(s));
  }
  Shard& shard = *shards_[s];
  WallTimer timer;
  Status status = Status::OK();
  {
    std::lock_guard<std::mutex> lock(shard.mu);
    status = shard.service->NotifyCompleted(worker_id,
                                            LocalTaskIndex(catalog_index));
  }
  Fm().notify_seconds.Observe(timer.ElapsedSeconds());
  return status;
}

void ShardedAssignmentService::Deregister(uint64_t worker_id) {
  Shard& shard = *shards_[ShardOfWorker(worker_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.service->Deregister(worker_id);
}

MotivationWeights ShardedAssignmentService::CurrentWeights(
    uint64_t worker_id) const {
  const Shard& shard = *shards_[ShardOfWorker(worker_id)];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.service->CurrentWeights(worker_id);
}

void ShardedAssignmentService::AdvanceClock(double minute) {
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    shard->service->AdvanceClock(minute);
  }
}

void ShardedAssignmentService::AdvanceShardClock(size_t shard_index,
                                                 double minute) {
  Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  shard.service->AdvanceClock(minute);
}

double ShardedAssignmentService::shard_clock_minutes(size_t shard_index) const {
  const Shard& shard = *shards_[shard_index];
  std::lock_guard<std::mutex> lock(shard.mu);
  return shard.service->clock_minutes();
}

size_t ShardedAssignmentService::iteration_count() const {
  size_t total = 0;
  for (const auto& shard : shards_) {
    std::lock_guard<std::mutex> lock(shard->mu);
    total += shard->service->iteration_count();
  }
  return total;
}

void ShardedAssignmentService::FlushEventLog() {
  EventLog* out = options_.service.event_log;
  if (out == nullptr || shards_.size() == 1) return;

  struct Tagged {
    LoggedEvent event;
    size_t shard = 0;
    size_t sequence = 0;  ///< Append order within the shard's log.
  };
  std::vector<Tagged> merged;
  for (size_t s = 0; s < shards_.size(); ++s) {
    Shard& shard = *shards_[s];
    std::lock_guard<std::mutex> lock(shard.mu);
    const std::vector<LoggedEvent>& events = shard.log->events();
    for (size_t i = shard.flushed; i < events.size(); ++i) {
      merged.push_back(Tagged{events[i], s, i});
    }
    shard.flushed = events.size();
  }

  // Deterministic global order: (minute, worker_id, shard, sequence).
  // Each worker lives in exactly one shard, so the (shard, sequence)
  // tie-break keeps every per-worker subsequence in its original
  // order, and the result is independent of driver-thread scheduling.
  std::sort(merged.begin(), merged.end(),
            [](const Tagged& a, const Tagged& b) {
              if (a.event.minute != b.event.minute) {
                return a.event.minute < b.event.minute;
              }
              if (a.event.worker_id != b.event.worker_id) {
                return a.event.worker_id < b.event.worker_id;
              }
              if (a.shard != b.shard) return a.shard < b.shard;
              return a.sequence < b.sequence;
            });

  for (Tagged& tagged : merged) {
    LoggedEvent& e = tagged.event;
    switch (e.kind) {
      case LoggedEvent::Kind::kDisplayed:
        out->RecordDisplayed(e.minute, e.worker_id, std::move(e.task_ids));
        break;
      case LoggedEvent::Kind::kCompleted:
        HTA_CHECK_EQ(e.task_ids.size(), size_t{1});
        out->RecordCompleted(e.minute, e.worker_id, e.task_ids.front());
        break;
      case LoggedEvent::Kind::kRegistered:
        out->RecordRegistered(e.minute, e.worker_id);
        break;
      case LoggedEvent::Kind::kDeregistered:
        out->RecordDeregistered(e.minute, e.worker_id);
        break;
    }
  }
}

}  // namespace hta
