#include "engine/motivation_estimator.h"

#include <algorithm>

#include "util/check.h"

namespace hta {

MotivationEstimator::MotivationEstimator(const std::vector<Task>* catalog,
                                         DistanceKind kind,
                                         MotivationWeights prior)
    : catalog_(catalog), kind_(kind), prior_(prior) {
  HTA_CHECK(catalog != nullptr);
}

void MotivationEstimator::AttachSharedCache(const CatalogCache* cache) {
  HTA_CHECK(cache != nullptr);
  HTA_CHECK(&cache->catalog() == catalog_);
  HTA_CHECK(cache->kind() == kind_);
  shared_cache_ = cache;
}

void MotivationEstimator::AttachSessionRelevance(
    const SessionRelevanceCache* rows) {
  HTA_CHECK(rows != nullptr);
  session_rel_ = rows;
}

double MotivationEstimator::Distance(size_t a, size_t b) const {
  if (shared_cache_ != nullptr) return shared_cache_->Distance(a, b);
  return PairwiseTaskDiversity(kind_, (*catalog_)[a], (*catalog_)[b]);
}

double MotivationEstimator::Relevance(uint64_t worker_id, size_t catalog_task,
                                      const Worker& worker) const {
  if (session_rel_ != nullptr) {
    // The row was built from the session's immutable interests — the
    // same vector `worker` carries — by the batched kernels, so a hit
    // equals the scalar evaluation bit-for-bit.
    const double* row = session_rel_->Row(worker_id);
    if (row != nullptr) return row[catalog_task];
  }
  return TaskRelevance(kind_, (*catalog_)[catalog_task], worker);
}

void MotivationEstimator::BeginBundle(
    uint64_t worker_id, const std::vector<size_t>& bundle_catalog_indices) {
  WorkerState& state = states_[worker_id];
  state.bundle = bundle_catalog_indices;
  state.completed.clear();
}

void MotivationEstimator::ObserveCompletion(uint64_t worker_id,
                                            size_t catalog_task,
                                            const Worker& worker) {
  HTA_CHECK_LT(catalog_task, catalog_->size());
  auto it = states_.find(worker_id);
  if (it == states_.end()) return;
  WorkerState& state = it->second;
  if (std::find(state.bundle.begin(), state.bundle.end(), catalog_task) ==
      state.bundle.end()) {
    return;  // Not part of the optimized bundle: no signal.
  }
  if (std::find(state.completed.begin(), state.completed.end(),
                catalog_task) != state.completed.end()) {
    return;  // Duplicate completion notification.
  }

  // Remaining bundle tasks the worker could have chosen instead
  // (T^{i-1}_w minus already-completed ones; includes catalog_task).
  std::vector<size_t> remaining;
  for (size_t t : state.bundle) {
    if (std::find(state.completed.begin(), state.completed.end(), t) ==
        state.completed.end()) {
      remaining.push_back(t);
    }
  }

  // Diversity component: marginal gain over completed prefix.
  double gain = 0.0;
  for (size_t prev : state.completed) gain += Distance(catalog_task, prev);
  double max_gain = 0.0;
  for (size_t candidate : remaining) {
    double g = 0.0;
    for (size_t prev : state.completed) g += Distance(candidate, prev);
    max_gain = std::max(max_gain, g);
  }
  if (max_gain > 0.0) {
    state.diversity_gain_sum += gain / max_gain;
    ++state.diversity_gain_count;
  }

  // Relevance component.
  const double rel = Relevance(worker_id, catalog_task, worker);
  double max_rel = 0.0;
  for (size_t candidate : remaining) {
    max_rel = std::max(max_rel, Relevance(worker_id, candidate, worker));
  }
  if (max_rel > 0.0) {
    state.relevance_gain_sum += rel / max_rel;
    ++state.relevance_gain_count;
  }

  state.completed.push_back(catalog_task);
}

MotivationWeights MotivationEstimator::Estimate(uint64_t worker_id) const {
  auto it = states_.find(worker_id);
  if (it == states_.end()) return prior_;
  const WorkerState& state = it->second;
  if (state.diversity_gain_count == 0 && state.relevance_gain_count == 0) {
    return prior_;
  }
  const double alpha_raw =
      state.diversity_gain_count > 0
          ? state.diversity_gain_sum /
                static_cast<double>(state.diversity_gain_count)
          : prior_.alpha;
  const double beta_raw =
      state.relevance_gain_count > 0
          ? state.relevance_gain_sum /
                static_cast<double>(state.relevance_gain_count)
          : prior_.beta;
  return MotivationWeights::Normalized(alpha_raw, beta_raw);
}

size_t MotivationEstimator::DiversityObservationCount(
    uint64_t worker_id) const {
  auto it = states_.find(worker_id);
  return it == states_.end() ? 0 : it->second.diversity_gain_count;
}

size_t MotivationEstimator::RelevanceObservationCount(
    uint64_t worker_id) const {
  auto it = states_.find(worker_id);
  return it == states_.end() ? 0 : it->second.relevance_gain_count;
}

}  // namespace hta
