#ifndef HTA_ENGINE_SESSION_RELEVANCE_CACHE_H_
#define HTA_ENGINE_SESSION_RELEVANCE_CACHE_H_

#include <cstdint>
#include <memory>
#include <unordered_map>
#include <vector>

#include "core/catalog_cache.h"
#include "core/keyword_vector.h"

namespace hta {

/// Persistent per-session relevance rows over a fixed catalog.
///
/// A worker's interests never change within a session, and relevance
/// rel(t, w) = 1 - d(t.keywords, w.interests) is independent of the
/// motivation weights (alpha, beta only multiply relevance *downstream*
/// — in QapView::C, the tabulated LSAP profits, and the Eq. 3 objective
/// — as scalar factors). So the full rel[w][catalog] row can be
/// computed once at registration with the batched rectangular kernel
/// and served to every later iteration by subset gather: weight-
/// estimate churn never invalidates a row, and the per-iteration
/// rectangular popcount sweep disappears from matching profits, LSAP
/// tabulation, and BundleStatsCache construction.
///
/// Every stored value comes from the same DistanceFromCounts arithmetic
/// as a fresh RectangularRelevance sweep (and as scalar TaskRelevance),
/// so gathered tables are bit-identical to the cold path at any thread
/// cap — the engine's warm/cold equivalence guarantee extends through
/// this cache unchanged.
///
/// Rows cost catalog_size * sizeof(double) bytes each; a byte budget
/// caps the total. Sessions past the budget are simply not cached
/// (AddSession is a no-op and GatherTable reports a miss), degrading to
/// the per-iteration sweep instead of evicting warm rows.
///
/// Single-threaded by design, like the AssignmentService that owns it.
class SessionRelevanceCache {
 public:
  /// `cache` supplies the packed catalog rows and metric (not owned;
  /// must outlive this object). `max_bytes` bounds the sum of row
  /// payloads.
  SessionRelevanceCache(const CatalogCache* cache, size_t max_bytes);

  /// Computes and stores the session's full relevance row (one batched
  /// catalog x 1 sweep). Skipped when the byte budget is exhausted.
  /// `max_threads` caps the kernel's pool draw (0 = full pool); the row
  /// is bit-identical at every cap. Re-registering an id overwrites.
  void AddSession(uint64_t worker_id, const KeywordVector& interests,
                  size_t max_threads = 0);

  /// Frees the session's row (no-op when absent or never cached).
  void RemoveSession(uint64_t worker_id);

  bool Contains(uint64_t worker_id) const {
    return rows_.find(worker_id) != rows_.end();
  }

  /// The session's full catalog row (rel[t] at catalog index t), or
  /// nullptr when the session is not cached.
  const double* Row(uint64_t worker_id) const;

  /// Gathers the dense row-major table rel[t * |W| + q] for the given
  /// catalog subset x worker list — exactly the layout
  /// HtaProblem::FillRelevanceTable produces. Returns false (leaving
  /// `out` untouched) when any worker lacks a cached row, so callers
  /// fall back to the fresh sweep.
  bool GatherTable(const std::vector<size_t>& catalog_indices,
                   const std::vector<uint64_t>& worker_ids,
                   std::vector<double>* out) const;

  size_t session_count() const { return rows_.size(); }
  size_t bytes_used() const { return bytes_used_; }
  size_t max_bytes() const { return max_bytes_; }

 private:
  const CatalogCache* cache_;
  size_t max_bytes_;
  size_t bytes_used_ = 0;
  std::unordered_map<uint64_t, std::unique_ptr<double[]>> rows_;
};

}  // namespace hta

#endif  // HTA_ENGINE_SESSION_RELEVANCE_CACHE_H_
