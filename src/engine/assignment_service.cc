#include "engine/assignment_service.h"

#include <algorithm>
#include <optional>

#include "assign/auditor.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace hta {

namespace {

/// Engine-level observability: iteration counters plus pool/session
/// gauges. The service is single-threaded by contract, so the gauges'
/// last-write-wins semantics are exact.
struct EngineMetrics {
  metrics::Counter iterations{"engine.iterations"};
  metrics::Counter workers_assigned{"engine.workers_assigned"};
  metrics::Counter solver_tasks{"engine.solver_tasks"};
  metrics::Counter completions{"engine.completions"};
  metrics::Counter registrations{"engine.registrations"};
  metrics::Counter deregistrations{"engine.deregistrations"};
  metrics::Counter warm_seeded{"engine.warm_start.seeded"};
  metrics::Counter warm_carried_tasks{"engine.warm_start.carried_tasks"};
  metrics::Counter warm_repaired_slots{"engine.warm_start.repaired_slots"};
  metrics::Counter warm_cold_fallbacks{"engine.warm_start.cold_fallbacks"};
  metrics::Gauge pool_available{"engine.pool_available"};
  metrics::Gauge active_sessions{"engine.active_sessions"};
  metrics::Histogram setup_seconds{"engine.setup_seconds",
                                   metrics::LatencyBucketsSeconds()};
  metrics::Histogram solve_seconds{"engine.solve_seconds",
                                   metrics::LatencyBucketsSeconds()};
};

EngineMetrics& Em() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

}  // namespace

AssignmentService::AssignmentService(const std::vector<Task>* catalog,
                                     AssignmentServiceOptions options)
    : catalog_(catalog),
      options_(options),
      pool_(catalog),
      estimator_(catalog, options.metric, options.prior),
      rng_(options.seed),
      next_worker_id_(options.worker_id_start) {
  HTA_CHECK(options_.worker_id_stride > 0) << "worker_id_stride must be >= 1";
  HTA_CHECK(catalog != nullptr);
  HTA_CHECK_GE(options_.xmax, size_t{1});
  options_.warm_cache =
      options_.warm_cache && GetEnvIntOr("HTA_WARM_CACHE", 1) != 0;
  if (options_.warm_cache) {
    const int64_t env_bytes = GetEnvIntOr("HTA_WARM_CACHE_BYTES", -1);
    if (env_bytes >= 0) {
      options_.warm_distance_cache_bytes = static_cast<size_t>(env_bytes);
    }
    CatalogCache::Options cache_options;
    cache_options.max_distance_cache_bytes =
        options_.warm_distance_cache_bytes;
    warm_cache_ = std::make_unique<CatalogCache>(catalog, options_.metric,
                                                 cache_options);
    estimator_.AttachSharedCache(warm_cache_.get());
    const int64_t rel_bytes = GetEnvIntOr("HTA_SESSION_REL_BYTES", -1);
    if (rel_bytes >= 0) {
      options_.session_relevance_bytes = static_cast<size_t>(rel_bytes);
    }
    if (options_.session_relevance_bytes > 0) {
      session_rel_ = std::make_unique<SessionRelevanceCache>(
          warm_cache_.get(), options_.session_relevance_bytes);
      estimator_.AttachSessionRelevance(session_rel_.get());
    }
  }
  // Carry-over needs both the subset views (the instance mixes
  // available and still-assigned tasks, so the cold task-copy path
  // doesn't apply) and the per-session displays this service tracks.
  options_.warm_start =
      options_.warm_cache &&
      GetEnvIntOr("HTA_WARM_START", options_.warm_start ? 1 : 0) != 0;
}

uint64_t AssignmentService::RegisterWorker(const KeywordVector& interests) {
  const uint64_t id = next_worker_id_;
  next_worker_id_ += options_.worker_id_stride;
  sessions_.emplace(id, Session(Worker(id, interests, options_.prior)));
  if (session_rel_ != nullptr) {
    session_rel_->AddSession(id, interests, options_.solver_threads);
  }
  ++active_sessions_;
  Em().registrations.Add();
  Em().active_sessions.Set(static_cast<int64_t>(active_sessions_));
  if (options_.event_log != nullptr) {
    options_.event_log->RecordRegistered(clock_minutes_, id);
  }
  RunIteration({id});
  return id;
}

std::vector<size_t> AssignmentService::Displayed(uint64_t worker_id) const {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end()) return {};
  std::vector<size_t> out;
  out.reserve(it->second.displayed_live);
  for (size_t t : it->second.displayed) {
    if (t != kNoTask) out.push_back(t);
  }
  return out;
}

Status AssignmentService::NotifyCompleted(uint64_t worker_id,
                                          size_t catalog_index) {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end() || !it->second.active) {
    return Status::NotFound("unknown or inactive worker " +
                            std::to_string(worker_id));
  }
  Session& session = it->second;
  if (session.granted.find(catalog_index) == session.granted.end()) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) +
        " was never displayed to worker " + std::to_string(worker_id));
  }
  HTA_RETURN_IF_ERROR(pool_.MarkCompleted(catalog_index));
  Em().completions.Add();
  if (options_.event_log != nullptr) {
    options_.event_log->RecordCompleted(clock_minutes_, worker_id,
                                        (*catalog_)[catalog_index].id());
  }
  estimator_.ObserveCompletion(worker_id, catalog_index, session.worker);
  session.worker.set_weights(estimator_.Estimate(worker_id));
  auto pos = session.displayed_pos.find(catalog_index);
  if (pos != session.displayed_pos.end()) {
    session.displayed[pos->second] = kNoTask;
    session.displayed_pos.erase(pos);
    --session.displayed_live;
  }
  ++session.completions_since_refresh;

  if (session.completions_since_refresh >=
          options_.refresh_after_completions ||
      session.displayed_live == 0) {
    session.needs_refresh = true;
    due_.insert(worker_id);
  }
  if (session.needs_refresh && pool_.available_count() > 0) {
    // Batch due workers until the configured pool size is reached (the
    // W^i sets of Problem 1); a worker with an exhausted display forces
    // the iteration so nobody stalls. `due_` tracks exactly the
    // active/needs_refresh sessions, already in ascending id order.
    bool urgent = false;
    for (uint64_t id : due_) {
      if (sessions_.at(id).displayed_live == 0) {
        urgent = true;
        break;
      }
    }
    if (urgent || due_.size() >= options_.min_batch_workers) {
      RunIteration(std::vector<uint64_t>(due_.begin(), due_.end()));
    }
  }
  return Status::OK();
}

void AssignmentService::Deregister(uint64_t worker_id) {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.active) {
    session.active = false;
    --active_sessions_;
    Em().deregistrations.Add();
    Em().active_sessions.Set(static_cast<int64_t>(active_sessions_));
    if (options_.event_log != nullptr) {
      options_.event_log->RecordDeregistered(clock_minutes_, worker_id);
    }
  }
  due_.erase(worker_id);
  if (options_.recycle_on_leave) {
    for (size_t t : session.displayed) {
      if (t == kNoTask) continue;
      // Displayed tasks are in Assigned state by construction.
      HTA_CHECK(pool_.Release(t).ok());
    }
  }
  session.displayed.clear();
  session.displayed_pos.clear();
  session.displayed_live = 0;
  session.last_bundle.clear();
  if (session_rel_ != nullptr) session_rel_->RemoveSession(worker_id);
}

MotivationWeights AssignmentService::CurrentWeights(uint64_t worker_id) const {
  return estimator_.Estimate(worker_id);
}

void AssignmentService::AdvanceClock(double minute) {
  HTA_CHECK_GE(minute, clock_minutes_);
  clock_minutes_ = minute;
}

std::vector<size_t> AssignmentService::DrawRandomAvailable(size_t count) {
  const size_t take = std::min(count, pool_.available_count());
  std::vector<size_t> picked_positions =
      rng_.SampleWithoutReplacement(pool_.available_count(), take);
  std::vector<size_t> out;
  out.reserve(take);
  // Resolve every rank against the same availability snapshot before
  // marking anything: ranks refer to the pre-draw available set.
  for (size_t pos : picked_positions) {
    out.push_back(pool_.SelectAvailable(pos));
  }
  for (size_t t : out) {
    HTA_CHECK(pool_.MarkAssigned(t).ok());
  }
  return out;
}

void AssignmentService::Display(Session* session, std::vector<size_t> bundle) {
  // Remember the optimized bundle before the extras dilute it: its
  // surviving members seed the worker's next warm-started iteration.
  session->last_bundle = bundle;
  // Paper setup: the displayed set is the optimized bundle plus a few
  // random tasks to avoid relevance silos.
  std::vector<size_t> extras = DrawRandomAvailable(options_.extra_random_tasks);
  bundle.insert(bundle.end(), extras.begin(), extras.end());
  session->displayed = std::move(bundle);
  session->displayed_pos.clear();
  for (size_t i = 0; i < session->displayed.size(); ++i) {
    session->displayed_pos.emplace(session->displayed[i], i);
  }
  session->displayed_live = session->displayed.size();
  for (size_t t : session->displayed) session->granted.insert(t);
  session->completions_since_refresh = 0;
  session->needs_refresh = false;
  due_.erase(session->worker.id());
  if (options_.event_log != nullptr) {
    std::vector<uint64_t> task_ids;
    task_ids.reserve(session->displayed.size());
    for (size_t t : session->displayed) {
      task_ids.push_back((*catalog_)[t].id());
    }
    options_.event_log->RecordDisplayed(clock_minutes_, session->worker.id(),
                                        std::move(task_ids));
  }
  estimator_.BeginBundle(session->worker.id(), session->displayed);
}

void AssignmentService::RunIteration(const std::vector<uint64_t>& worker_ids) {
  if (worker_ids.empty() || pool_.available_count() == 0) return;
  trace::PhaseSpan iteration_span("engine.iteration");
  WallTimer timer;

  // Cold adaptive workers get a random bundle (the paper's cold-start
  // handling for HTA-GRE); everyone else goes through the strategy.
  std::vector<uint64_t> solve_ids;
  size_t assigned_workers = 0;
  for (uint64_t id : worker_ids) {
    Session& session = sessions_.at(id);
    if (!session.active) continue;
    const bool cold_start =
        options_.strategy == StrategyKind::kHtaGre && session.cold;
    if (cold_start) {
      Display(&session, DrawRandomAvailable(options_.xmax));
      session.cold = false;
      ++assigned_workers;
    } else {
      solve_ids.push_back(id);
    }
  }

  double motivation = 0.0;
  size_t solver_task_count = 0;
  double setup_seconds = 0.0;
  bool warm_seeded = false;
  size_t carried_tasks = 0;
  size_t repaired_slots = 0;
  if (!solve_ids.empty() && pool_.available_count() > 0) {
    // Build the iteration-local instance: a sample of available tasks
    // plus the due workers with their current weight estimates. The
    // task list lives in a member scratch buffer reused across
    // iterations.
    std::vector<size_t>& available = scratch_available_;
    available.clear();
    if (pool_.available_count() > options_.max_tasks_per_iteration) {
      std::vector<size_t> positions = rng_.SampleWithoutReplacement(
          pool_.available_count(), options_.max_tasks_per_iteration);
      std::sort(positions.begin(), positions.end());
      available.reserve(positions.size());
      for (size_t pos : positions) {
        available.push_back(pool_.SelectAvailable(pos));
      }
    } else {
      pool_.AvailableIndicesInto(&available);
    }
    const size_t fresh_count = available.size();
    std::vector<Worker> local_workers;
    local_workers.reserve(solve_ids.size());
    for (uint64_t id : solve_ids) {
      const Session& session = sessions_.at(id);
      local_workers.emplace_back(id, session.worker.interests(),
                                 estimator_.Estimate(id));
    }

    // Carry-over seed (warm start): each due worker keeps the surviving
    // members of their previous optimized bundle — still displayed,
    // hence still kAssigned and theirs. Survivors join the instance
    // after the fresh sample (they are disjoint from it: the sample is
    // kAvailable), and the seed assignment hands each worker their own
    // survivors; completed and departed tasks/workers have already
    // dropped out of the displays. No survivors at all → cold fallback.
    Assignment seed;
    if (options_.warm_start &&
        options_.strategy == StrategyKind::kHtaGre &&
        warm_cache_ != nullptr) {
      trace::PhaseSpan seed_span("engine.warm_seed");
      seed.bundles.resize(solve_ids.size());
      for (size_t q = 0; q < solve_ids.size(); ++q) {
        const Session& session = sessions_.at(solve_ids[q]);
        for (size_t t : session.last_bundle) {
          if (session.displayed_pos.find(t) == session.displayed_pos.end()) {
            continue;  // Completed (or re-randomized) since last display.
          }
          seed.bundles[q].push_back(static_cast<TaskIndex>(available.size()));
          available.push_back(t);
          ++carried_tasks;
        }
      }
      warm_seeded = carried_tasks > 0;
      if (!warm_seeded) Em().warm_cold_fallbacks.Add();
    }

    // Persistent relevance rows: gather the instance's rel[t][q] table
    // from the per-session rows instead of re-running the rectangular
    // sweep (bit-identical values — same popcount kernels). Sessions
    // past the row budget miss, and the problem falls back to the
    // sweep.
    std::vector<double> rel_override;
    if (warm_cache_ != nullptr && session_rel_ != nullptr) {
      session_rel_->GatherTable(available, solve_ids, &rel_override);
    }

    // Warm path: a zero-copy view over the shared catalog cache; cold
    // path: materialize the sampled tasks. Both produce bit-identical
    // instances (kDice deployments rely on allow_non_metric, matching
    // the estimator's unconditional use of the configured kind).
    std::optional<CatalogSubsetView> view;
    std::vector<Task> local_tasks;
    auto make_problem = [&]() -> Result<HtaProblem> {
      if (warm_cache_ != nullptr) {
        view.emplace(warm_cache_.get(), std::vector<size_t>(available));
        return HtaProblem::CreateFromSubset(&*view, &local_workers,
                                            options_.xmax,
                                            /*allow_non_metric=*/true,
                                            std::move(rel_override));
      }
      local_tasks.reserve(available.size());
      for (size_t idx : available) local_tasks.push_back((*catalog_)[idx]);
      return HtaProblem::Create(&local_tasks, &local_workers, options_.xmax,
                                options_.metric, /*allow_non_metric=*/true);
    };
    WallTimer setup_timer;
    std::optional<trace::PhaseSpan> setup_span;
    setup_span.emplace("engine.setup", &Em().setup_seconds);
    auto problem = make_problem();
    setup_span.reset();
    HTA_CHECK(problem.ok()) << problem.status();
    setup_seconds = setup_timer.ElapsedSeconds();
    std::optional<trace::PhaseSpan> solve_span;
    solve_span.emplace("engine.solve", &Em().solve_seconds);
    auto solved = [&]() -> Result<HtaSolveResult> {
      if (warm_seeded) {
        LocalSearchOptions ls_options;
        ls_options.threads = options_.solver_threads;
        return SolveHtaWarmStart(*problem, seed, ls_options);
      }
      return SolveWithStrategy(*problem, options_.strategy,
                               options_.seed + iterations_.size(), &rng_,
                               options_.swap, options_.solver_threads);
    }();
    solve_span.reset();
    HTA_CHECK(solved.ok()) << solved.status();
    if (warm_seeded) {
      repaired_slots = solved->stats.warm_repaired_slots;
      Em().warm_seeded.Add();
      Em().warm_carried_tasks.Add(carried_tasks);
      Em().warm_repaired_slots.Add(repaired_slots);
    }
    if (AuditEnabled()) {
      // Every strategy (HTA and baselines alike) must hand the engine a
      // feasible assignment whose reported objective survives a
      // from-scratch recompute; a violation here would corrupt the task
      // pool below, so it is fatal rather than recoverable.
      const Status audit = AssignmentAuditor(*problem).Audit(
          solved->assignment, solved->stats.motivation);
      HTA_CHECK(audit.ok()) << audit;
    }
    motivation = solved->stats.motivation;
    solver_task_count = available.size();

    // Mark every solved bundle before drawing any random extras, so an
    // extra drawn for one worker cannot collide with a task the solver
    // granted to another. Carried survivors (locals past the fresh
    // sample) are already kAssigned and skip the pool transition; a
    // survivor the refinement dropped simply stays assigned-and-hidden,
    // exactly like an uncompleted task abandoned by a cold refresh.
    std::vector<std::vector<size_t>> bundles(solve_ids.size());
    for (size_t q = 0; q < solve_ids.size(); ++q) {
      bundles[q].reserve(solved->assignment.bundles[q].size());
      for (TaskIndex local : solved->assignment.bundles[q]) {
        const size_t catalog_index = available[local];
        if (static_cast<size_t>(local) < fresh_count) {
          HTA_CHECK(pool_.MarkAssigned(catalog_index).ok());
        }
        bundles[q].push_back(catalog_index);
      }
    }
    for (size_t q = 0; q < solve_ids.size(); ++q) {
      Session& session = sessions_.at(solve_ids[q]);
      Display(&session, std::move(bundles[q]));
      session.cold = false;
      ++assigned_workers;
    }
  }

  IterationRecord record;
  record.iteration = iterations_.size() + 1;
  record.worker_count = assigned_workers;
  record.task_count = solver_task_count;
  record.solve_seconds = timer.ElapsedSeconds();
  record.setup_seconds = setup_seconds;
  record.motivation = motivation;
  record.warm_seeded = warm_seeded;
  record.carried_tasks = carried_tasks;
  record.repaired_slots = repaired_slots;
  iterations_.push_back(record);
  Em().iterations.Add();
  Em().workers_assigned.Add(assigned_workers);
  Em().solver_tasks.Add(solver_task_count);
  Em().pool_available.Set(static_cast<int64_t>(pool_.available_count()));
}

}  // namespace hta
