#include "engine/assignment_service.h"

#include <algorithm>

#include "assign/auditor.h"
#include "util/timer.h"

namespace hta {

AssignmentService::AssignmentService(const std::vector<Task>* catalog,
                                     AssignmentServiceOptions options)
    : catalog_(catalog),
      options_(options),
      pool_(catalog),
      estimator_(catalog, options.metric, options.prior),
      rng_(options.seed) {
  HTA_CHECK(catalog != nullptr);
  HTA_CHECK_GE(options_.xmax, size_t{1});
}

uint64_t AssignmentService::RegisterWorker(const KeywordVector& interests) {
  const uint64_t id = next_worker_id_++;
  Session session{Worker(id, interests, options_.prior), {}, 0, true, true,
                  false, {}};
  sessions_.emplace(id, std::move(session));
  RunIteration({id});
  return id;
}

std::vector<size_t> AssignmentService::Displayed(uint64_t worker_id) const {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end()) return {};
  return it->second.displayed;
}

Status AssignmentService::NotifyCompleted(uint64_t worker_id,
                                          size_t catalog_index) {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end() || !it->second.active) {
    return Status::NotFound("unknown or inactive worker " +
                            std::to_string(worker_id));
  }
  Session& session = it->second;
  if (session.granted.find(catalog_index) == session.granted.end()) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) +
        " was never displayed to worker " + std::to_string(worker_id));
  }
  HTA_RETURN_IF_ERROR(pool_.MarkCompleted(catalog_index));
  if (options_.event_log != nullptr) {
    options_.event_log->RecordCompleted(clock_minutes_, worker_id,
                                        (*catalog_)[catalog_index].id());
  }
  estimator_.ObserveCompletion(worker_id, catalog_index, session.worker);
  session.worker.set_weights(estimator_.Estimate(worker_id));
  auto pos = std::find(session.displayed.begin(), session.displayed.end(),
                       catalog_index);
  if (pos != session.displayed.end()) session.displayed.erase(pos);
  ++session.completions_since_refresh;

  if (session.completions_since_refresh >=
          options_.refresh_after_completions ||
      session.displayed.empty()) {
    session.needs_refresh = true;
  }
  if (session.needs_refresh && pool_.available_count() > 0) {
    // Batch due workers until the configured pool size is reached (the
    // W^i sets of Problem 1); a worker with an exhausted display forces
    // the iteration so nobody stalls.
    std::vector<uint64_t> due;
    bool urgent = false;
    for (auto& [id, s] : sessions_) {
      if (!s.active || !s.needs_refresh) continue;
      due.push_back(id);
      if (s.displayed.empty()) urgent = true;
    }
    if (urgent || due.size() >= options_.min_batch_workers) {
      std::sort(due.begin(), due.end());
      RunIteration(due);
    }
  }
  return Status::OK();
}

void AssignmentService::Deregister(uint64_t worker_id) {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  session.active = false;
  if (options_.recycle_on_leave) {
    for (size_t t : session.displayed) {
      // Displayed tasks are in Assigned state by construction.
      HTA_CHECK(pool_.Release(t).ok());
    }
  }
  session.displayed.clear();
}

MotivationWeights AssignmentService::CurrentWeights(uint64_t worker_id) const {
  return estimator_.Estimate(worker_id);
}

void AssignmentService::AdvanceClock(double minute) {
  HTA_CHECK_GE(minute, clock_minutes_);
  clock_minutes_ = minute;
}

std::vector<size_t> AssignmentService::DrawRandomAvailable(size_t count) {
  std::vector<size_t> available = pool_.AvailableIndices();
  const size_t take = std::min(count, available.size());
  std::vector<size_t> picked_positions =
      rng_.SampleWithoutReplacement(available.size(), take);
  std::vector<size_t> out;
  out.reserve(take);
  for (size_t pos : picked_positions) {
    out.push_back(available[pos]);
    HTA_CHECK(pool_.MarkAssigned(available[pos]).ok());
  }
  return out;
}

void AssignmentService::Display(Session* session, std::vector<size_t> bundle) {
  // Paper setup: the displayed set is the optimized bundle plus a few
  // random tasks to avoid relevance silos.
  std::vector<size_t> extras = DrawRandomAvailable(options_.extra_random_tasks);
  bundle.insert(bundle.end(), extras.begin(), extras.end());
  session->displayed = bundle;
  for (size_t t : session->displayed) session->granted.insert(t);
  session->completions_since_refresh = 0;
  session->needs_refresh = false;
  if (options_.event_log != nullptr) {
    std::vector<uint64_t> task_ids;
    task_ids.reserve(session->displayed.size());
    for (size_t t : session->displayed) {
      task_ids.push_back((*catalog_)[t].id());
    }
    options_.event_log->RecordDisplayed(clock_minutes_, session->worker.id(),
                                        std::move(task_ids));
  }
  estimator_.BeginBundle(session->worker.id(), session->displayed);
}

void AssignmentService::RunIteration(const std::vector<uint64_t>& worker_ids) {
  if (worker_ids.empty() || pool_.available_count() == 0) return;
  WallTimer timer;

  // Cold adaptive workers get a random bundle (the paper's cold-start
  // handling for HTA-GRE); everyone else goes through the strategy.
  std::vector<uint64_t> solve_ids;
  size_t assigned_workers = 0;
  for (uint64_t id : worker_ids) {
    Session& session = sessions_.at(id);
    if (!session.active) continue;
    const bool cold_start =
        options_.strategy == StrategyKind::kHtaGre && session.cold;
    if (cold_start) {
      Display(&session, DrawRandomAvailable(options_.xmax));
      session.cold = false;
      ++assigned_workers;
    } else {
      solve_ids.push_back(id);
    }
  }

  double motivation = 0.0;
  size_t solver_task_count = 0;
  if (!solve_ids.empty() && pool_.available_count() > 0) {
    // Build the iteration-local instance: a sample of available tasks
    // plus the due workers with their current weight estimates.
    std::vector<size_t> available = pool_.AvailableIndices();
    if (available.size() > options_.max_tasks_per_iteration) {
      std::vector<size_t> positions = rng_.SampleWithoutReplacement(
          available.size(), options_.max_tasks_per_iteration);
      std::sort(positions.begin(), positions.end());
      std::vector<size_t> sampled;
      sampled.reserve(positions.size());
      for (size_t pos : positions) sampled.push_back(available[pos]);
      available = std::move(sampled);
    }
    std::vector<Task> local_tasks;
    local_tasks.reserve(available.size());
    for (size_t idx : available) local_tasks.push_back((*catalog_)[idx]);
    std::vector<Worker> local_workers;
    local_workers.reserve(solve_ids.size());
    for (uint64_t id : solve_ids) {
      const Session& session = sessions_.at(id);
      local_workers.emplace_back(id, session.worker.interests(),
                                 estimator_.Estimate(id));
    }
    auto problem = HtaProblem::Create(&local_tasks, &local_workers,
                                      options_.xmax, options_.metric);
    HTA_CHECK(problem.ok()) << problem.status();
    auto solved = SolveWithStrategy(*problem, options_.strategy,
                                    options_.seed + iterations_.size(), &rng_,
                                    options_.swap);
    HTA_CHECK(solved.ok()) << solved.status();
    if (AuditEnabled()) {
      // Every strategy (HTA and baselines alike) must hand the engine a
      // feasible assignment whose reported objective survives a
      // from-scratch recompute; a violation here would corrupt the task
      // pool below, so it is fatal rather than recoverable.
      const Status audit = AssignmentAuditor(*problem).Audit(
          solved->assignment, solved->stats.motivation);
      HTA_CHECK(audit.ok()) << audit;
    }
    motivation = solved->stats.motivation;
    solver_task_count = local_tasks.size();

    // Mark every solved bundle before drawing any random extras, so an
    // extra drawn for one worker cannot collide with a task the solver
    // granted to another.
    std::vector<std::vector<size_t>> bundles(solve_ids.size());
    for (size_t q = 0; q < solve_ids.size(); ++q) {
      bundles[q].reserve(solved->assignment.bundles[q].size());
      for (TaskIndex local : solved->assignment.bundles[q]) {
        const size_t catalog_index = available[local];
        HTA_CHECK(pool_.MarkAssigned(catalog_index).ok());
        bundles[q].push_back(catalog_index);
      }
    }
    for (size_t q = 0; q < solve_ids.size(); ++q) {
      Session& session = sessions_.at(solve_ids[q]);
      Display(&session, std::move(bundles[q]));
      session.cold = false;
      ++assigned_workers;
    }
  }

  IterationRecord record;
  record.iteration = iterations_.size() + 1;
  record.worker_count = assigned_workers;
  record.task_count = solver_task_count;
  record.solve_seconds = timer.ElapsedSeconds();
  record.motivation = motivation;
  iterations_.push_back(record);
}

}  // namespace hta
