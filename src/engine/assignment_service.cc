#include "engine/assignment_service.h"

#include <algorithm>
#include <optional>

#include "assign/auditor.h"
#include "util/env.h"
#include "util/metrics.h"
#include "util/timer.h"
#include "util/trace.h"

namespace hta {

namespace {

/// Engine-level observability: iteration counters plus pool/session
/// gauges. The service is single-threaded by contract, so the gauges'
/// last-write-wins semantics are exact.
struct EngineMetrics {
  metrics::Counter iterations{"engine.iterations"};
  metrics::Counter workers_assigned{"engine.workers_assigned"};
  metrics::Counter solver_tasks{"engine.solver_tasks"};
  metrics::Counter completions{"engine.completions"};
  metrics::Counter registrations{"engine.registrations"};
  metrics::Counter deregistrations{"engine.deregistrations"};
  metrics::Gauge pool_available{"engine.pool_available"};
  metrics::Gauge active_sessions{"engine.active_sessions"};
  metrics::Histogram setup_seconds{"engine.setup_seconds",
                                   metrics::LatencyBucketsSeconds()};
  metrics::Histogram solve_seconds{"engine.solve_seconds",
                                   metrics::LatencyBucketsSeconds()};
};

EngineMetrics& Em() {
  static EngineMetrics* m = new EngineMetrics();
  return *m;
}

}  // namespace

AssignmentService::AssignmentService(const std::vector<Task>* catalog,
                                     AssignmentServiceOptions options)
    : catalog_(catalog),
      options_(options),
      pool_(catalog),
      estimator_(catalog, options.metric, options.prior),
      rng_(options.seed) {
  HTA_CHECK(catalog != nullptr);
  HTA_CHECK_GE(options_.xmax, size_t{1});
  options_.warm_cache =
      options_.warm_cache && GetEnvIntOr("HTA_WARM_CACHE", 1) != 0;
  if (options_.warm_cache) {
    const int64_t env_bytes = GetEnvIntOr("HTA_WARM_CACHE_BYTES", -1);
    if (env_bytes >= 0) {
      options_.warm_distance_cache_bytes = static_cast<size_t>(env_bytes);
    }
    CatalogCache::Options cache_options;
    cache_options.max_distance_cache_bytes =
        options_.warm_distance_cache_bytes;
    warm_cache_ = std::make_unique<CatalogCache>(catalog, options_.metric,
                                                 cache_options);
    estimator_.AttachSharedCache(warm_cache_.get());
  }
}

uint64_t AssignmentService::RegisterWorker(const KeywordVector& interests) {
  const uint64_t id = next_worker_id_++;
  Session session{Worker(id, interests, options_.prior), {}, {}, 0, 0,
                  true,   true,
                  false,  {}};
  sessions_.emplace(id, std::move(session));
  ++active_sessions_;
  Em().registrations.Add();
  Em().active_sessions.Set(static_cast<int64_t>(active_sessions_));
  if (options_.event_log != nullptr) {
    options_.event_log->RecordRegistered(clock_minutes_, id);
  }
  RunIteration({id});
  return id;
}

std::vector<size_t> AssignmentService::Displayed(uint64_t worker_id) const {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end()) return {};
  std::vector<size_t> out;
  out.reserve(it->second.displayed_live);
  for (size_t t : it->second.displayed) {
    if (t != kNoTask) out.push_back(t);
  }
  return out;
}

Status AssignmentService::NotifyCompleted(uint64_t worker_id,
                                          size_t catalog_index) {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end() || !it->second.active) {
    return Status::NotFound("unknown or inactive worker " +
                            std::to_string(worker_id));
  }
  Session& session = it->second;
  if (session.granted.find(catalog_index) == session.granted.end()) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) +
        " was never displayed to worker " + std::to_string(worker_id));
  }
  HTA_RETURN_IF_ERROR(pool_.MarkCompleted(catalog_index));
  Em().completions.Add();
  if (options_.event_log != nullptr) {
    options_.event_log->RecordCompleted(clock_minutes_, worker_id,
                                        (*catalog_)[catalog_index].id());
  }
  estimator_.ObserveCompletion(worker_id, catalog_index, session.worker);
  session.worker.set_weights(estimator_.Estimate(worker_id));
  auto pos = session.displayed_pos.find(catalog_index);
  if (pos != session.displayed_pos.end()) {
    session.displayed[pos->second] = kNoTask;
    session.displayed_pos.erase(pos);
    --session.displayed_live;
  }
  ++session.completions_since_refresh;

  if (session.completions_since_refresh >=
          options_.refresh_after_completions ||
      session.displayed_live == 0) {
    session.needs_refresh = true;
    due_.insert(worker_id);
  }
  if (session.needs_refresh && pool_.available_count() > 0) {
    // Batch due workers until the configured pool size is reached (the
    // W^i sets of Problem 1); a worker with an exhausted display forces
    // the iteration so nobody stalls. `due_` tracks exactly the
    // active/needs_refresh sessions, already in ascending id order.
    bool urgent = false;
    for (uint64_t id : due_) {
      if (sessions_.at(id).displayed_live == 0) {
        urgent = true;
        break;
      }
    }
    if (urgent || due_.size() >= options_.min_batch_workers) {
      RunIteration(std::vector<uint64_t>(due_.begin(), due_.end()));
    }
  }
  return Status::OK();
}

void AssignmentService::Deregister(uint64_t worker_id) {
  auto it = sessions_.find(worker_id);
  if (it == sessions_.end()) return;
  Session& session = it->second;
  if (session.active) {
    session.active = false;
    --active_sessions_;
    Em().deregistrations.Add();
    Em().active_sessions.Set(static_cast<int64_t>(active_sessions_));
    if (options_.event_log != nullptr) {
      options_.event_log->RecordDeregistered(clock_minutes_, worker_id);
    }
  }
  due_.erase(worker_id);
  if (options_.recycle_on_leave) {
    for (size_t t : session.displayed) {
      if (t == kNoTask) continue;
      // Displayed tasks are in Assigned state by construction.
      HTA_CHECK(pool_.Release(t).ok());
    }
  }
  session.displayed.clear();
  session.displayed_pos.clear();
  session.displayed_live = 0;
}

MotivationWeights AssignmentService::CurrentWeights(uint64_t worker_id) const {
  return estimator_.Estimate(worker_id);
}

void AssignmentService::AdvanceClock(double minute) {
  HTA_CHECK_GE(minute, clock_minutes_);
  clock_minutes_ = minute;
}

std::vector<size_t> AssignmentService::DrawRandomAvailable(size_t count) {
  const size_t take = std::min(count, pool_.available_count());
  std::vector<size_t> picked_positions =
      rng_.SampleWithoutReplacement(pool_.available_count(), take);
  std::vector<size_t> out;
  out.reserve(take);
  // Resolve every rank against the same availability snapshot before
  // marking anything: ranks refer to the pre-draw available set.
  for (size_t pos : picked_positions) {
    out.push_back(pool_.SelectAvailable(pos));
  }
  for (size_t t : out) {
    HTA_CHECK(pool_.MarkAssigned(t).ok());
  }
  return out;
}

void AssignmentService::Display(Session* session, std::vector<size_t> bundle) {
  // Paper setup: the displayed set is the optimized bundle plus a few
  // random tasks to avoid relevance silos.
  std::vector<size_t> extras = DrawRandomAvailable(options_.extra_random_tasks);
  bundle.insert(bundle.end(), extras.begin(), extras.end());
  session->displayed = std::move(bundle);
  session->displayed_pos.clear();
  for (size_t i = 0; i < session->displayed.size(); ++i) {
    session->displayed_pos.emplace(session->displayed[i], i);
  }
  session->displayed_live = session->displayed.size();
  for (size_t t : session->displayed) session->granted.insert(t);
  session->completions_since_refresh = 0;
  session->needs_refresh = false;
  due_.erase(session->worker.id());
  if (options_.event_log != nullptr) {
    std::vector<uint64_t> task_ids;
    task_ids.reserve(session->displayed.size());
    for (size_t t : session->displayed) {
      task_ids.push_back((*catalog_)[t].id());
    }
    options_.event_log->RecordDisplayed(clock_minutes_, session->worker.id(),
                                        std::move(task_ids));
  }
  estimator_.BeginBundle(session->worker.id(), session->displayed);
}

void AssignmentService::RunIteration(const std::vector<uint64_t>& worker_ids) {
  if (worker_ids.empty() || pool_.available_count() == 0) return;
  trace::PhaseSpan iteration_span("engine.iteration");
  WallTimer timer;

  // Cold adaptive workers get a random bundle (the paper's cold-start
  // handling for HTA-GRE); everyone else goes through the strategy.
  std::vector<uint64_t> solve_ids;
  size_t assigned_workers = 0;
  for (uint64_t id : worker_ids) {
    Session& session = sessions_.at(id);
    if (!session.active) continue;
    const bool cold_start =
        options_.strategy == StrategyKind::kHtaGre && session.cold;
    if (cold_start) {
      Display(&session, DrawRandomAvailable(options_.xmax));
      session.cold = false;
      ++assigned_workers;
    } else {
      solve_ids.push_back(id);
    }
  }

  double motivation = 0.0;
  size_t solver_task_count = 0;
  double setup_seconds = 0.0;
  if (!solve_ids.empty() && pool_.available_count() > 0) {
    // Build the iteration-local instance: a sample of available tasks
    // plus the due workers with their current weight estimates.
    std::vector<size_t> available;
    if (pool_.available_count() > options_.max_tasks_per_iteration) {
      std::vector<size_t> positions = rng_.SampleWithoutReplacement(
          pool_.available_count(), options_.max_tasks_per_iteration);
      std::sort(positions.begin(), positions.end());
      available.reserve(positions.size());
      for (size_t pos : positions) {
        available.push_back(pool_.SelectAvailable(pos));
      }
    } else {
      available = pool_.AvailableIndices();
    }
    std::vector<Worker> local_workers;
    local_workers.reserve(solve_ids.size());
    for (uint64_t id : solve_ids) {
      const Session& session = sessions_.at(id);
      local_workers.emplace_back(id, session.worker.interests(),
                                 estimator_.Estimate(id));
    }
    // Warm path: a zero-copy view over the shared catalog cache; cold
    // path: materialize the sampled tasks. Both produce bit-identical
    // instances (kDice deployments rely on allow_non_metric, matching
    // the estimator's unconditional use of the configured kind).
    std::optional<CatalogSubsetView> view;
    std::vector<Task> local_tasks;
    auto make_problem = [&]() -> Result<HtaProblem> {
      if (warm_cache_ != nullptr) {
        view.emplace(warm_cache_.get(), std::vector<size_t>(available));
        return HtaProblem::CreateFromSubset(&*view, &local_workers,
                                            options_.xmax,
                                            /*allow_non_metric=*/true);
      }
      local_tasks.reserve(available.size());
      for (size_t idx : available) local_tasks.push_back((*catalog_)[idx]);
      return HtaProblem::Create(&local_tasks, &local_workers, options_.xmax,
                                options_.metric, /*allow_non_metric=*/true);
    };
    WallTimer setup_timer;
    std::optional<trace::PhaseSpan> setup_span;
    setup_span.emplace("engine.setup", &Em().setup_seconds);
    auto problem = make_problem();
    setup_span.reset();
    HTA_CHECK(problem.ok()) << problem.status();
    setup_seconds = setup_timer.ElapsedSeconds();
    std::optional<trace::PhaseSpan> solve_span;
    solve_span.emplace("engine.solve", &Em().solve_seconds);
    auto solved = SolveWithStrategy(*problem, options_.strategy,
                                    options_.seed + iterations_.size(), &rng_,
                                    options_.swap, options_.solver_threads);
    solve_span.reset();
    HTA_CHECK(solved.ok()) << solved.status();
    if (AuditEnabled()) {
      // Every strategy (HTA and baselines alike) must hand the engine a
      // feasible assignment whose reported objective survives a
      // from-scratch recompute; a violation here would corrupt the task
      // pool below, so it is fatal rather than recoverable.
      const Status audit = AssignmentAuditor(*problem).Audit(
          solved->assignment, solved->stats.motivation);
      HTA_CHECK(audit.ok()) << audit;
    }
    motivation = solved->stats.motivation;
    solver_task_count = available.size();

    // Mark every solved bundle before drawing any random extras, so an
    // extra drawn for one worker cannot collide with a task the solver
    // granted to another.
    std::vector<std::vector<size_t>> bundles(solve_ids.size());
    for (size_t q = 0; q < solve_ids.size(); ++q) {
      bundles[q].reserve(solved->assignment.bundles[q].size());
      for (TaskIndex local : solved->assignment.bundles[q]) {
        const size_t catalog_index = available[local];
        HTA_CHECK(pool_.MarkAssigned(catalog_index).ok());
        bundles[q].push_back(catalog_index);
      }
    }
    for (size_t q = 0; q < solve_ids.size(); ++q) {
      Session& session = sessions_.at(solve_ids[q]);
      Display(&session, std::move(bundles[q]));
      session.cold = false;
      ++assigned_workers;
    }
  }

  IterationRecord record;
  record.iteration = iterations_.size() + 1;
  record.worker_count = assigned_workers;
  record.task_count = solver_task_count;
  record.solve_seconds = timer.ElapsedSeconds();
  record.setup_seconds = setup_seconds;
  record.motivation = motivation;
  iterations_.push_back(record);
  Em().iterations.Add();
  Em().workers_assigned.Add(assigned_workers);
  Em().solver_tasks.Add(solver_task_count);
  Em().pool_available.Set(static_cast<int64_t>(pool_.available_count()));
}

}  // namespace hta
