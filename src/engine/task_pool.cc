#include "engine/task_pool.h"

#include <string>

#include "util/check.h"

namespace hta {

TaskPool::TaskPool(const std::vector<Task>* catalog) : catalog_(catalog) {
  HTA_CHECK(catalog != nullptr);
  states_.assign(catalog->size(), TaskState::kAvailable);
  available_count_ = catalog->size();
}

TaskState TaskPool::state(size_t catalog_index) const {
  HTA_CHECK_LT(catalog_index, states_.size());
  return states_[catalog_index];
}

std::vector<size_t> TaskPool::AvailableIndices() const {
  std::vector<size_t> out;
  out.reserve(available_count_);
  for (size_t i = 0; i < states_.size(); ++i) {
    if (states_[i] == TaskState::kAvailable) out.push_back(i);
  }
  return out;
}

Status TaskPool::MarkAssigned(size_t catalog_index) {
  HTA_CHECK_LT(catalog_index, states_.size());
  if (states_[catalog_index] != TaskState::kAvailable) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " is not available");
  }
  states_[catalog_index] = TaskState::kAssigned;
  --available_count_;
  return Status::OK();
}

Status TaskPool::MarkCompleted(size_t catalog_index) {
  HTA_CHECK_LT(catalog_index, states_.size());
  if (states_[catalog_index] != TaskState::kAssigned) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " is not assigned");
  }
  states_[catalog_index] = TaskState::kCompleted;
  ++completed_count_;
  return Status::OK();
}

Status TaskPool::Release(size_t catalog_index) {
  HTA_CHECK_LT(catalog_index, states_.size());
  if (states_[catalog_index] != TaskState::kAssigned) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " is not assigned");
  }
  states_[catalog_index] = TaskState::kAvailable;
  ++available_count_;
  return Status::OK();
}

}  // namespace hta
