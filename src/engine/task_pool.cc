#include "engine/task_pool.h"

#include <bit>
#include <string>

#include "util/check.h"

namespace hta {

TaskPool::TaskPool(const std::vector<Task>* catalog) : catalog_(catalog) {
  HTA_CHECK(catalog != nullptr);
  const size_t n = catalog->size();
  states_.assign(n, TaskState::kAvailable);
  available_count_ = n;
  const size_t words = (n + 63) / 64;
  avail_words_.assign(words, ~uint64_t{0});
  if (n % 64 != 0 && words > 0) {
    // Clear the bits past the catalog in the last word.
    avail_words_.back() = (uint64_t{1} << (n % 64)) - 1;
  }
  fenwick_.assign(words + 1, 0);
  for (size_t w = 0; w < words; ++w) {
    FenwickAdd(w, static_cast<int32_t>(std::popcount(avail_words_[w])));
  }
  fenwick_mask_ = words == 0 ? 0 : std::bit_floor(words);
}

void TaskPool::FenwickAdd(size_t word, int32_t delta) {
  for (size_t i = word + 1; i < fenwick_.size(); i += i & (~i + 1)) {
    fenwick_[i] += delta;
  }
}

void TaskPool::SetAvailableBit(size_t catalog_index) {
  avail_words_[catalog_index / 64] |= uint64_t{1} << (catalog_index % 64);
  FenwickAdd(catalog_index / 64, 1);
}

void TaskPool::ClearAvailableBit(size_t catalog_index) {
  avail_words_[catalog_index / 64] &= ~(uint64_t{1} << (catalog_index % 64));
  FenwickAdd(catalog_index / 64, -1);
}

TaskState TaskPool::state(size_t catalog_index) const {
  HTA_CHECK_LT(catalog_index, states_.size());
  return states_[catalog_index];
}

std::vector<size_t> TaskPool::AvailableIndices() const {
  std::vector<size_t> out;
  AvailableIndicesInto(&out);
  return out;
}

void TaskPool::AvailableIndicesInto(std::vector<size_t>* out) const {
  out->clear();
  out->reserve(available_count_);
  for (size_t w = 0; w < avail_words_.size(); ++w) {
    uint64_t bits = avail_words_[w];
    while (bits != 0) {
      out->push_back(w * 64 + static_cast<size_t>(std::countr_zero(bits)));
      bits &= bits - 1;
    }
  }
}

size_t TaskPool::SelectAvailable(size_t rank) const {
  HTA_CHECK_LT(rank, available_count_);
  // Fenwick binary lifting: find the last word whose cumulative
  // popcount is <= rank, leaving `rank` relative to that word.
  size_t word = 0;
  for (size_t step = fenwick_mask_; step > 0; step >>= 1) {
    const size_t next = word + step;
    if (next < fenwick_.size() &&
        static_cast<size_t>(fenwick_[next]) <= rank) {
      word = next;
      rank -= static_cast<size_t>(fenwick_[next]);
    }
  }
  // Select the rank-th set bit within the word.
  uint64_t bits = avail_words_[word];
  for (size_t k = 0; k < rank; ++k) bits &= bits - 1;
  HTA_DCHECK_NE(bits, uint64_t{0});
  return word * 64 + static_cast<size_t>(std::countr_zero(bits));
}

Status TaskPool::MarkAssigned(size_t catalog_index) {
  HTA_CHECK_LT(catalog_index, states_.size());
  if (states_[catalog_index] != TaskState::kAvailable) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " is not available");
  }
  states_[catalog_index] = TaskState::kAssigned;
  ClearAvailableBit(catalog_index);
  --available_count_;
  return Status::OK();
}

Status TaskPool::MarkCompleted(size_t catalog_index) {
  HTA_CHECK_LT(catalog_index, states_.size());
  if (states_[catalog_index] != TaskState::kAssigned) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " is not assigned");
  }
  states_[catalog_index] = TaskState::kCompleted;
  ++completed_count_;
  return Status::OK();
}

Status TaskPool::Release(size_t catalog_index) {
  HTA_CHECK_LT(catalog_index, states_.size());
  if (states_[catalog_index] != TaskState::kAssigned) {
    return Status::FailedPrecondition(
        "task " + std::to_string(catalog_index) + " is not assigned");
  }
  states_[catalog_index] = TaskState::kAvailable;
  SetAvailableBit(catalog_index);
  ++available_count_;
  return Status::OK();
}

}  // namespace hta
