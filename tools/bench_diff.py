#!/usr/bin/env python3
"""Compare fresh bench JSON-lines against committed BENCH_*.json baselines.

Usage:
    tools/bench_diff.py --fresh bench-smoke.json [--threshold 3.5]
                        BENCH_ENGINE.json BENCH_KERNELS.json ...

Every record is a JSON-lines row written by bench::AppendBenchJson:

    {"bench": ..., "scale": ..., "threads": ..., "params": {...},
     "seconds": ...}

Records are matched between the fresh file and the baselines on
(bench, scale) plus every non-timing entry of "params"; the comparison
then takes the fresh/baseline ratio of each timing field ("seconds" and
any param ending in "_seconds"). The machine running CI is not the
machine that recorded the baseline, so raw ratios are uniformly shifted
by the hardware-speed difference: all ratios are normalized by their
global median before thresholding, which cancels the machine factor and
leaves only per-bench anomalies. A normalized ratio above --threshold
fails the run (exit 1) and names the offending record, so a perf
regression in one code path cannot hide behind an otherwise-green suite.

Fresh records with no baseline counterpart are reported and skipped,
not failed — committing a baseline row is how a bench opts into
regression tracking. A bench name absent from every baseline file is
summarized as one "new bench (no baseline yet)" notice rather than one
skip line per record, and a baseline file that does not exist yet is
tolerated with a notice (both happen on the PR that introduces a
bench). Timings at or below --min-seconds (default 1 ms) are skipped
as pure noise.
"""

import argparse
import json
import statistics
import sys


def load_records(path, missing_ok=False):
    records = []
    try:
        f = open(path, "r", encoding="utf-8")
    except FileNotFoundError:
        if missing_ok:
            print(f"bench_diff: baseline file {path} not found — treating "
                  f"its benches as new (no baseline yet)")
            return records
        sys.exit(f"{path}: not found")
    with f:
        for line_no, line in enumerate(f, 1):
            line = line.strip()
            if not line:
                continue
            try:
                records.append(json.loads(line))
            except json.JSONDecodeError as e:
                sys.exit(f"{path}:{line_no}: bad JSON line: {e}")
    return records


def is_timing_param(key):
    return key.endswith("_seconds")


def match_key(record):
    """Identity of a record: bench, scale, and every stable param.

    Stable means everything except wall-clock measurements: "_seconds"
    params and timing-derived "speedup" ratios vary run to run, while
    config values (mode, churn, catalog, sample_cap) and deterministic
    outputs (solver_iterations, objective sums — bit-identical for a
    fixed seed on every machine) identify the record. Top-level
    "threads"/"hardware_concurrency" are machine properties and stay
    out.
    """
    parts = [("bench", record.get("bench")), ("scale", record.get("scale"))]
    for key in sorted(record.get("params", {})):
        if is_timing_param(key) or "speedup" in key:
            continue
        parts.append((key, record["params"][key]))
    return tuple(parts)


def timing_fields(record):
    fields = {}
    seconds = record.get("seconds")
    if isinstance(seconds, (int, float)):
        fields["seconds"] = float(seconds)
    for key, value in record.get("params", {}).items():
        if is_timing_param(key) and isinstance(value, (int, float)):
            fields[key] = float(value)
    return fields


def main():
    parser = argparse.ArgumentParser(description=__doc__.splitlines()[0])
    parser.add_argument("--fresh", required=True,
                        help="JSON-lines file from the run under test "
                             "(HTA_BENCH_JSON output)")
    parser.add_argument("--threshold", type=float, default=3.5,
                        help="max allowed normalized slowdown ratio "
                             "(default %(default)s)")
    parser.add_argument("--min-seconds", type=float, default=1e-3,
                        help="ignore timings at or below this many seconds "
                             "(default %(default)s)")
    parser.add_argument("baselines", nargs="+",
                        help="committed BENCH_*.json files")
    args = parser.parse_args()

    baseline = {}
    baseline_benches = set()
    for path in args.baselines:
        for record in load_records(path, missing_ok=True):
            baseline[match_key(record)] = (path, record)
            baseline_benches.add(record.get("bench"))

    fresh = load_records(args.fresh)
    if not fresh:
        sys.exit(f"{args.fresh}: no records")

    ratios = []  # (ratio, description)
    unmatched = []
    new_benches = {}  # bench name -> record count
    for record in fresh:
        key = match_key(record)
        if key not in baseline:
            bench = record.get("bench")
            if bench not in baseline_benches:
                # The whole bench is absent from every baseline file:
                # it is new, not a stale config — pass with one notice
                # per bench instead of one skip line per record.
                new_benches[bench] = new_benches.get(bench, 0) + 1
            else:
                unmatched.append(key)
            continue
        base_path, base = baseline[key]
        base_fields = timing_fields(base)
        name = " ".join(f"{k}={v}" for k, v in key)
        for field, fresh_value in timing_fields(record).items():
            base_value = base_fields.get(field)
            if base_value is None:
                continue
            if (fresh_value <= args.min_seconds
                    or base_value <= args.min_seconds):
                continue
            ratios.append((fresh_value / base_value,
                           f"{name} [{field}] {fresh_value:.6f}s vs "
                           f"{base_value:.6f}s ({base_path})"))

    for bench, count in sorted(new_benches.items()):
        print(f"new bench (no baseline yet, pass with notice): {bench} "
              f"[{count} record(s)] — commit a BENCH_*.json row to opt "
              f"into regression tracking")
    for key in unmatched:
        print("no baseline (skipped):", " ".join(f"{k}={v}" for k, v in key))
    if not ratios:
        print("bench_diff: no comparable timings — nothing to check")
        return

    median = statistics.median(r for r, _ in ratios)
    print(f"bench_diff: {len(ratios)} timings compared, "
          f"median fresh/baseline ratio {median:.3f} "
          f"(machine-speed factor, divided out)")

    failures = []
    for ratio, description in sorted(ratios, reverse=True):
        normalized = ratio / median
        marker = " <-- REGRESSION" if normalized > args.threshold else ""
        print(f"  x{normalized:6.2f} (raw x{ratio:6.2f})  "
              f"{description}{marker}")
        if normalized > args.threshold:
            failures.append(description)

    if failures:
        print(f"\nbench_diff: {len(failures)} timing(s) regressed beyond "
              f"x{args.threshold} after machine normalization", file=sys.stderr)
        sys.exit(1)
    print(f"\nbench_diff: OK — no normalized slowdown beyond "
          f"x{args.threshold}")


if __name__ == "__main__":
    main()
