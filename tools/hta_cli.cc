// hta — command-line front end for libhta.
//
// Subcommands:
//   hta generate --tasks-out c.csv --workers-out w.csv
//                [--groups N] [--tasks-per-group N] [--vocab N]
//                [--workers N] [--seed S]
//       Generate a synthetic AMT-like catalog and worker population.
//
//   hta solve --tasks c.csv --workers w.csv [--xmax N]
//             [--algo app|gre|app-rect] [--seed S] [--out assign.csv]
//       Solve one HTA iteration and print (or export) the assignment.
//
//   hta simulate [--strategy gre|div|rel|random] [--sessions N]
//                [--minutes M] [--concurrent] [--seed S]
//       Run the online-deployment simulation for one strategy and
//       print quality / throughput / retention.
//
// All subcommands exit 0 on success and print errors to stderr.
#include <cstdlib>
#include <iostream>
#include <map>
#include <set>
#include <string>
#include <vector>

#include "assign/baselines.h"
#include "assign/hta_solver.h"
#include "io/catalog_io.h"
#include "sim/online_experiment.h"
#include "sim/worker_gen.h"
#include "util/stats.h"
#include "util/table.h"

namespace {

using namespace hta;

/// Tiny --flag value parser: flags are "--name value" or bare
/// "--name" booleans.
class Flags {
 public:
  Flags(int argc, char** argv, int first) {
    for (int i = first; i < argc; ++i) {
      std::string arg = argv[i];
      if (arg.rfind("--", 0) != 0) {
        errors_.push_back("unexpected argument: " + arg);
        continue;
      }
      arg = arg.substr(2);
      if (i + 1 < argc && std::string(argv[i + 1]).rfind("--", 0) != 0) {
        values_[arg] = argv[++i];
      } else {
        values_[arg] = "";
      }
    }
  }

  std::string Get(const std::string& name, const std::string& fallback) {
    seen_.insert(name);
    auto it = values_.find(name);
    return it == values_.end() ? fallback : it->second;
  }
  long long GetInt(const std::string& name, long long fallback) {
    const std::string raw = Get(name, "");
    if (raw.empty()) return fallback;
    return std::atoll(raw.c_str());
  }
  double GetDouble(const std::string& name, double fallback) {
    const std::string raw = Get(name, "");
    if (raw.empty()) return fallback;
    return std::atof(raw.c_str());
  }
  bool Has(const std::string& name) {
    seen_.insert(name);
    return values_.find(name) != values_.end();
  }

  /// Returns false (and prints) if unknown flags or parse errors exist.
  bool Validate() const {
    bool ok = errors_.empty();
    for (const auto& e : errors_) std::cerr << "error: " << e << "\n";
    for (const auto& [name, value] : values_) {
      if (seen_.find(name) == seen_.end()) {
        std::cerr << "error: unknown flag --" << name << "\n";
        ok = false;
      }
    }
    return ok;
  }

 private:
  std::map<std::string, std::string> values_;
  std::set<std::string> seen_;
  std::vector<std::string> errors_;
};

int Usage() {
  std::cerr <<
      "usage:\n"
      "  hta generate --tasks-out FILE --workers-out FILE [--groups N]\n"
      "               [--tasks-per-group N] [--vocab N] [--workers N]\n"
      "               [--seed S]\n"
      "  hta solve    --tasks FILE --workers FILE [--xmax N]\n"
      "               [--algo app|gre|app-rect] [--seed S] [--out FILE]\n"
      "  hta simulate [--strategy gre|div|rel|random] [--sessions N]\n"
      "               [--minutes M] [--concurrent] [--seed S]\n";
  return 2;
}

int RunGenerate(Flags& flags) {
  const std::string tasks_out = flags.Get("tasks-out", "");
  const std::string workers_out = flags.Get("workers-out", "");
  CatalogOptions catalog_options;
  catalog_options.num_groups =
      static_cast<size_t>(flags.GetInt("groups", 50));
  catalog_options.tasks_per_group =
      static_cast<size_t>(flags.GetInt("tasks-per-group", 20));
  catalog_options.vocabulary_size =
      static_cast<size_t>(flags.GetInt("vocab", 500));
  catalog_options.seed = static_cast<uint64_t>(flags.GetInt("seed", 7));
  WorkerGenOptions worker_options;
  worker_options.count = static_cast<size_t>(flags.GetInt("workers", 40));
  worker_options.seed = catalog_options.seed + 1;
  if (!flags.Validate()) return Usage();
  if (tasks_out.empty() || workers_out.empty()) {
    std::cerr << "error: --tasks-out and --workers-out are required\n";
    return 2;
  }

  auto catalog = GenerateCatalog(catalog_options);
  if (!catalog.ok()) {
    std::cerr << "error: " << catalog.status() << "\n";
    return 1;
  }
  auto workers = GenerateWorkers(worker_options, *catalog);
  if (!workers.ok()) {
    std::cerr << "error: " << workers.status() << "\n";
    return 1;
  }
  Status status = SaveCatalogCsv(*catalog, tasks_out);
  if (status.ok()) status = SaveWorkersCsv(*workers, catalog->space,
                                           workers_out);
  if (!status.ok()) {
    std::cerr << "error: " << status << "\n";
    return 1;
  }
  std::cout << "wrote " << catalog->size() << " tasks to " << tasks_out
            << " and " << workers->size() << " workers to " << workers_out
            << "\n";
  return 0;
}

int RunSolve(Flags& flags) {
  const std::string tasks_path = flags.Get("tasks", "");
  const std::string workers_path = flags.Get("workers", "");
  const size_t xmax = static_cast<size_t>(flags.GetInt("xmax", 10));
  const std::string algo = flags.Get("algo", "gre");
  const uint64_t seed = static_cast<uint64_t>(flags.GetInt("seed", 42));
  const std::string out = flags.Get("out", "");
  if (!flags.Validate()) return Usage();
  if (tasks_path.empty() || workers_path.empty()) {
    std::cerr << "error: --tasks and --workers are required\n";
    return 2;
  }

  auto deployment = LoadDeployment(tasks_path, workers_path);
  if (!deployment.ok()) {
    std::cerr << "error: " << deployment.status() << "\n";
    return 1;
  }
  const Catalog* catalog = &deployment->catalog;
  const std::vector<Worker>* workers = &deployment->workers;
  auto problem = HtaProblem::Create(&catalog->tasks, workers, xmax);
  if (!problem.ok()) {
    std::cerr << "error: " << problem.status() << "\n";
    return 1;
  }

  HtaSolverOptions options;
  options.seed = seed;
  if (algo == "app") {
    options.lsap = LsapMethod::kExactJv;
  } else if (algo == "gre") {
    options.lsap = LsapMethod::kGreedy;
  } else if (algo == "app-rect") {
    options.lsap = LsapMethod::kExactStructured;
  } else {
    std::cerr << "error: unknown --algo '" << algo << "'\n";
    return 2;
  }
  auto result = SolveHta(*problem, options);
  if (!result.ok()) {
    std::cerr << "error: " << result.status() << "\n";
    return 1;
  }
  std::cout << SolverName(options) << ": motivation = "
            << FmtDouble(result->stats.motivation, 2) << ", assigned "
            << result->assignment.AssignedTaskCount() << " of "
            << catalog->size() << " tasks in "
            << FmtDouble(result->stats.total_seconds, 3) << " s\n";
  if (!out.empty()) {
    const Status status = SaveAssignmentCsv(result->assignment, *workers,
                                            catalog->tasks, out);
    if (!status.ok()) {
      std::cerr << "error: " << status << "\n";
      return 1;
    }
    std::cout << "assignment written to " << out << "\n";
  } else {
    for (size_t q = 0; q < workers->size() && q < 10; ++q) {
      std::cout << "  worker " << (*workers)[q].id() << ":";
      for (TaskIndex t : result->assignment.bundles[q]) {
        std::cout << " " << catalog->tasks[t].id();
      }
      std::cout << "\n";
    }
    if (workers->size() > 10) {
      std::cout << "  ... (" << workers->size() - 10
                << " more workers; use --out to export)\n";
    }
  }
  return 0;
}

int RunSimulate(Flags& flags) {
  const std::string strategy_name = flags.Get("strategy", "gre");
  OnlineExperimentOptions options;
  options.sessions_per_strategy =
      static_cast<size_t>(flags.GetInt("sessions", 8));
  options.session.max_minutes = flags.GetDouble("minutes", 15.0);
  options.concurrent_sessions = flags.Has("concurrent");
  options.seed = static_cast<uint64_t>(flags.GetInt("seed", 1234));
  if (!flags.Validate()) return Usage();

  StrategyKind kind;
  if (strategy_name == "gre") {
    kind = StrategyKind::kHtaGre;
  } else if (strategy_name == "div") {
    kind = StrategyKind::kHtaGreDiv;
  } else if (strategy_name == "rel") {
    kind = StrategyKind::kHtaGreRel;
  } else if (strategy_name == "random") {
    kind = StrategyKind::kRandom;
  } else {
    std::cerr << "error: unknown --strategy '" << strategy_name << "'\n";
    return 2;
  }
  options.strategies = {kind};

  const OnlineExperimentResult result = RunOnlineExperiment(options);
  const StrategyCurves& c = result.ForStrategy(kind);
  const double quality =
      c.total_questions > 0
          ? static_cast<double>(c.total_correct) / c.total_questions
          : 0.0;
  std::cout << "strategy " << StrategyName(kind) << " over "
            << options.sessions_per_strategy << " sessions ("
            << (options.concurrent_sessions ? "concurrent" : "sequential")
            << "):\n"
            << "  quality     " << FmtPercent(quality) << " ("
            << c.total_correct << "/" << c.total_questions
            << " questions)\n"
            << "  throughput  " << c.total_tasks << " tasks, "
            << FmtDouble(Summarize(c.tasks_per_session).mean, 1)
            << " per session\n"
            << "  retention   mean session "
            << FmtDouble(Summarize(c.session_duration_minutes).mean, 1)
            << " min of " << options.session.max_minutes << " allotted\n";
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  if (argc < 2) return Usage();
  const std::string command = argv[1];
  Flags flags(argc, argv, 2);
  if (command == "generate") return RunGenerate(flags);
  if (command == "solve") return RunSolve(flags);
  if (command == "simulate") return RunSimulate(flags);
  std::cerr << "error: unknown command '" << command << "'\n";
  return Usage();
}
