// hta_metrics_snapshot — drives a scripted concurrent deployment with
// the metrics registry forced on and prints the resulting snapshot as
// JSON (or, with --digest, the deterministic counter digest that must
// be bit-identical across HTA_THREADS; or, with --quantiles, a
// per-histogram p50/p90/p99 latency report).
//
//   hta_metrics_snapshot [--workers N] [--minutes M] [--arrival-rate R]
//                        [--seed S] [--digest] [--quantiles] [--out FILE]
//                        [--trace FILE]
//
// With --trace FILE the run also records phase spans and flushes them
// to FILE in Chrome trace-event format.
#include <cstdlib>
#include <fstream>
#include <iostream>
#include <string>
#include <vector>

#include "engine/assignment_service.h"
#include "sim/concurrent_deployment.h"
#include "sim/online_experiment.h"
#include "sim/worker_gen.h"
#include "util/metrics.h"
#include "util/trace.h"

namespace {

using namespace hta;

struct ExportConfig {
  size_t workers = 8;
  double minutes = 10.0;
  double arrival_rate = 2.0;
  uint64_t seed = 7;
  bool digest = false;
  bool quantiles = false;
  std::string out;
  std::string trace;
};

int Usage() {
  std::cerr << "usage: hta_metrics_snapshot [--workers N] [--minutes M]\n"
               "                            [--arrival-rate R] [--seed S]\n"
               "                            [--digest] [--quantiles]\n"
               "                            [--out FILE] [--trace FILE]\n";
  return 2;
}

/// One line per histogram: name, observation count, and interpolated
/// p50/p90/p99 (see metrics::HistogramQuantile for the estimator).
std::string QuantileReport(const std::vector<metrics::MetricValue>& snapshot) {
  std::string report;
  for (const metrics::MetricValue& v : snapshot) {
    if (v.kind != metrics::internal::Kind::kHistogram) continue;
    report += v.name + " count=" + std::to_string(v.count);
    for (const double q : {0.5, 0.9, 0.99}) {
      report += " p" + std::to_string(static_cast<int>(q * 100)) + "=" +
                std::to_string(v.ValueAtQuantile(q));
    }
    report += "\n";
  }
  if (report.empty()) report = "(no histograms recorded)\n";
  return report;
}

std::vector<BehavioralWorker> MakeWorkers(const Catalog& catalog, size_t count,
                                          uint64_t seed) {
  std::vector<BehavioralWorker> workers;
  workers.reserve(count);
  for (size_t s = 0; s < count; ++s) {
    Rng rng(seed + 1000 + s);
    const BehaviorParams params = SampleBehaviorParams(&rng);
    KeywordVector interests(catalog.space.size());
    for (int b = 0; b < 5; ++b) {
      interests.Set(
          static_cast<KeywordId>(rng.NextBounded(catalog.space.size())));
    }
    workers.emplace_back(&catalog.tasks, DistanceKind::kJaccard,
                         Worker(s + 1, std::move(interests)), params,
                         rng.Fork(1));
  }
  return workers;
}

int Run(const ExportConfig& config) {
  metrics::OverrideEnabled(true);
  if (!config.trace.empty()) trace::OverridePathForTesting(config.trace);

  CatalogOptions catalog_options;
  catalog_options.num_groups = 15;
  catalog_options.tasks_per_group = 40;
  catalog_options.vocabulary_size = 150;
  catalog_options.seed = config.seed;
  auto catalog = GenerateCatalog(catalog_options);
  HTA_CHECK(catalog.ok()) << catalog.status();

  AssignmentServiceOptions service_options;
  service_options.strategy = StrategyKind::kHtaGre;
  service_options.xmax = 6;
  service_options.extra_random_tasks = 2;
  service_options.refresh_after_completions = 3;
  service_options.max_tasks_per_iteration = 100;
  service_options.seed = config.seed;
  AssignmentService service(&catalog->tasks, service_options);

  auto workers = MakeWorkers(*catalog, config.workers, config.seed);
  ConcurrentDeploymentOptions deployment;
  deployment.arrival_rate_per_min = config.arrival_rate;
  deployment.session.max_minutes = config.minutes;
  deployment.seed = config.seed + 101;
  RunConcurrentDeployment(&service, *catalog, &workers, deployment);

  if (!config.trace.empty()) trace::Flush();

  std::string report;
  if (config.quantiles) {
    report = QuantileReport(metrics::Snapshot());
  } else if (config.digest) {
    report = metrics::DeterministicDigest();
  } else {
    report = metrics::SnapshotJson();
  }
  if (config.out.empty()) {
    std::cout << report << "\n";
  } else {
    std::ofstream out(config.out, std::ios::trunc);
    if (!out.good()) {
      std::cerr << "error: cannot open " << config.out << "\n";
      return 1;
    }
    out << report << "\n";
  }
  return 0;
}

}  // namespace

int main(int argc, char** argv) {
  ExportConfig config;
  for (int i = 1; i < argc; ++i) {
    const std::string arg = argv[i];
    auto next = [&]() -> const char* {
      return i + 1 < argc ? argv[++i] : nullptr;
    };
    if (arg == "--workers") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.workers = static_cast<size_t>(std::atoll(v));
    } else if (arg == "--minutes") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.minutes = std::atof(v);
    } else if (arg == "--arrival-rate") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.arrival_rate = std::atof(v);
    } else if (arg == "--seed") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.seed = static_cast<uint64_t>(std::atoll(v));
    } else if (arg == "--digest") {
      config.digest = true;
    } else if (arg == "--quantiles") {
      config.quantiles = true;
    } else if (arg == "--out") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.out = v;
    } else if (arg == "--trace") {
      const char* v = next();
      if (v == nullptr) return Usage();
      config.trace = v;
    } else {
      return Usage();
    }
  }
  if (config.workers == 0 || config.minutes <= 0.0 ||
      config.arrival_rate <= 0.0) {
    return Usage();
  }
  return Run(config);
}
